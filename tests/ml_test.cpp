#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/gbc.h"
#include "ml/linalg.h"
#include "ml/lstm.h"
#include "ml/metrics.h"
#include "ml/regression.h"
#include "ml/tree.h"

namespace p5g::ml {
namespace {

// --------------------------------------------------------------- linalg --
TEST(Linalg, SolvesSimpleSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0; a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 3.0;
  std::vector<double> x;
  ASSERT_TRUE(solve_linear_system(a, {5.0, 10.0}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(Linalg, DetectsSingularMatrix) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0; a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0; a.at(1, 1) = 4.0;
  std::vector<double> x;
  EXPECT_FALSE(solve_linear_system(a, {1.0, 2.0}, x));
}

TEST(Linalg, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 0.0; a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 0.0;
  std::vector<double> x;
  ASSERT_TRUE(solve_linear_system(a, {3.0, 7.0}, x));
  EXPECT_NEAR(x[0], 7.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

// ----------------------------------------------------------- regression --
TEST(Ridge, RecoversLinearRelation) {
  Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-5.0, 5.0), b = rng.uniform(-5.0, 5.0);
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 1.0 + rng.normal(0.0, 0.01));
  }
  RidgeRegression r(1e-6);
  ASSERT_TRUE(r.fit(x, y));
  EXPECT_NEAR(r.predict(std::vector<double>{1.0, 1.0}), 2.0, 0.05);
  EXPECT_NEAR(r.predict(std::vector<double>{0.0, 0.0}), 1.0, 0.05);
}

TEST(TriangularSmoother, PreservesConstant) {
  TriangularSmoother s(3);
  const std::vector<double> xs(20, 5.0);
  for (double v : s.smooth(xs)) EXPECT_NEAR(v, 5.0, 1e-12);
}

TEST(TriangularSmoother, ReducesNoiseVariance) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0.0, 1.0));
  TriangularSmoother s(4);
  const std::vector<double> sm = s.smooth(xs);
  double var_raw = 0.0, var_sm = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    var_raw += xs[i] * xs[i];
    var_sm += sm[i] * sm[i];
  }
  EXPECT_LT(var_sm, 0.5 * var_raw);
}

TEST(SignalForecaster, ExtrapolatesCleanLinearTrend) {
  SignalForecaster f(20, 3);
  for (int i = 0; i < 20; ++i) f.add(-100.0 + 0.5 * i);  // +0.5 dB/sample
  // 10 samples ahead of the last (-90.5): expect about -85.5.
  EXPECT_NEAR(f.forecast(10), -85.5, 1.5);
  EXPECT_NEAR(f.residual_sigma(), 0.0, 0.3);
}

TEST(SignalForecaster, ForecastStaysWithinDataEnvelope) {
  // Property: on pure-noise windows the (damped) 1-second-ahead forecast
  // never leaves the observed sample range by more than a small margin.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    SignalForecaster f(20, 3);
    double lo = 0.0, hi = -1e9;
    lo = 1e9;
    for (int i = 0; i < 20; ++i) {
      const double v = -90.0 + rng.normal(0.0, 3.0);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      f.add(v);
    }
    const double fc = f.forecast(20);
    EXPECT_GT(fc, lo - 4.0) << "seed " << seed;
    EXPECT_LT(fc, hi + 4.0) << "seed " << seed;
  }
}

TEST(SignalForecaster, MedianFilterRejectsImpulse) {
  SignalForecaster clean(20, 3), spiked(20, 3);
  for (int i = 0; i < 20; ++i) {
    clean.add(-90.0);
    spiked.add(i == 10 ? -120.0 : -90.0);  // one deep fade dip
  }
  EXPECT_NEAR(spiked.forecast(5), clean.forecast(5), 1.5);
}

TEST(SignalForecaster, ResetClearsHistory) {
  SignalForecaster f(20, 3);
  for (int i = 0; i < 20; ++i) f.add(-80.0);
  f.reset();
  EXPECT_FALSE(f.ready());
  EXPECT_DOUBLE_EQ(f.forecast(5), -140.0);
}

// ----------------------------------------------------------------- tree --
TEST(Tree, LearnsAxisAlignedSplit) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double v = i < 50 ? -1.0 : 1.0;
    x.push_back({static_cast<double>(i)});
    y.push_back(v);
  }
  RegressionTree t;
  t.fit(x, y, {}, {3, 5});
  EXPECT_NEAR(t.predict(std::vector<double>{10.0}), -1.0, 0.01);
  EXPECT_NEAR(t.predict(std::vector<double>{90.0}), 1.0, 0.01);
}

TEST(Tree, RespectsMinLeaf) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 8; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 4 ? 0.0 : 1.0);
  }
  RegressionTree t;
  TreeConfig cfg;
  cfg.min_leaf = 10;  // cannot split
  t.fit(x, y, {}, cfg);
  EXPECT_NEAR(t.predict(std::vector<double>{0.0}), 0.5, 1e-9);
}

// ------------------------------------------------------------------ gbc --
TEST(Gbc, LearnsSeparableClasses) {
  Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 600; ++i) {
    const int cls = static_cast<int>(rng.uniform_index(3));
    const double cx = cls == 0 ? -5.0 : (cls == 1 ? 0.0 : 5.0);
    x.push_back({cx + rng.normal(0.0, 0.7), rng.normal(0.0, 1.0)});
    y.push_back(cls);
  }
  GradientBoostedClassifier::Config cfg;
  cfg.n_classes = 3;
  cfg.n_rounds = 25;
  GradientBoostedClassifier gbc(cfg);
  gbc.fit(x, y);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (gbc.predict(x[i]) == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(x.size()), 0.95);
}

TEST(Gbc, ProbabilitiesSumToOne) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({rng.normal(0.0, 1.0)});
    y.push_back(static_cast<int>(rng.uniform_index(2)));
  }
  GradientBoostedClassifier::Config cfg;
  cfg.n_classes = 2;
  cfg.n_rounds = 5;
  GradientBoostedClassifier gbc(cfg);
  gbc.fit(x, y);
  const std::vector<double> p = gbc.predict_proba(std::vector<double>{0.3});
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// ----------------------------------------------------------------- lstm --
TEST(Lstm, LearnsLastStepRule) {
  // Label = 1 iff the last feature value is positive: trivially learnable.
  Rng rng(6);
  std::vector<Sequence> seqs;
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    Sequence s;
    for (int t = 0; t < 8; ++t) s.push_back({rng.normal(0.0, 1.0)});
    labels.push_back(s.back()[0] > 0.0 ? 1 : 0);
    seqs.push_back(std::move(s));
  }
  StackedLstm::Config cfg;
  cfg.input_dim = 1;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.n_classes = 2;
  cfg.epochs = 8;
  StackedLstm lstm(cfg);
  lstm.fit(seqs, labels);
  int correct = 0;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    if (lstm.predict(seqs[i]) == labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(seqs.size()), 0.9);
}

TEST(Lstm, ProbabilitiesWellFormed) {
  StackedLstm::Config cfg;
  cfg.input_dim = 2;
  cfg.hidden = 4;
  cfg.n_classes = 3;
  StackedLstm lstm(cfg);
  Sequence s{{0.1, 0.2}, {0.3, 0.4}};
  const std::vector<double> p = lstm.predict_proba(s);
  ASSERT_EQ(p.size(), 3u);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// -------------------------------------------------------------- metrics --
TEST(ConfusionMatrix, BasicCounts) {
  ConfusionMatrix m(3);
  m.add(0, 0);
  m.add(0, 1);
  m.add(1, 1);
  m.add(2, 2);
  m.add(2, 2);
  EXPECT_EQ(m.total(), 5u);
  EXPECT_NEAR(m.accuracy(), 0.8, 1e-12);
  EXPECT_NEAR(m.precision(1), 0.5, 1e-12);  // 1 TP, 1 FP from class 0
  EXPECT_NEAR(m.recall(1), 1.0, 1e-12);
  EXPECT_NEAR(m.f1(1), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrix, BinaryCollapse) {
  ConfusionMatrix m(3);
  m.add(0, 0);  // TN
  m.add(1, 2);  // positive predicted positive (class mismatch still TP binary)
  m.add(2, 0);  // FN
  m.add(0, 1);  // FP
  const ClassificationScores s = m.binary_collapsed();
  EXPECT_NEAR(s.precision, 0.5, 1e-12);
  EXPECT_NEAR(s.recall, 0.5, 1e-12);
  EXPECT_NEAR(s.accuracy, 0.5, 1e-12);
}

TEST(EventScores, PerfectPrediction) {
  std::vector<int> truth(200, 0), pred(200, 0);
  for (int i = 50; i < 60; ++i) truth[i] = pred[i] = 1;
  const EventScores s = score_events(truth, pred, 10);
  EXPECT_DOUBLE_EQ(s.scores.f1, 1.0);
  EXPECT_EQ(s.matched, 1u);
}

TEST(EventScores, EarlySustainedWarningCounts) {
  // Prediction starts 15 samples before the truth onset and overlaps it.
  std::vector<int> truth(200, 0), pred(200, 0);
  for (int i = 100; i < 110; ++i) truth[i] = 1;
  for (int i = 85; i < 105; ++i) pred[i] = 1;
  const EventScores s = score_events(truth, pred, 10);
  EXPECT_DOUBLE_EQ(s.scores.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.scores.precision, 1.0);
}

TEST(EventScores, WrongClassDoesNotMatch) {
  std::vector<int> truth(100, 0), pred(100, 0);
  for (int i = 40; i < 50; ++i) truth[i] = 1;
  for (int i = 40; i < 50; ++i) pred[i] = 2;
  const EventScores s = score_events(truth, pred, 10);
  EXPECT_DOUBLE_EQ(s.scores.f1, 0.0);
}

TEST(EventScores, FarPredictionIsFalsePositive) {
  std::vector<int> truth(300, 0), pred(300, 0);
  for (int i = 50; i < 60; ++i) truth[i] = 1;
  for (int i = 200; i < 210; ++i) pred[i] = 1;
  const EventScores s = score_events(truth, pred, 10);
  EXPECT_DOUBLE_EQ(s.scores.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.scores.recall, 0.0);
  EXPECT_EQ(s.predicted_events, 1u);
  EXPECT_EQ(s.true_events, 1u);
}

TEST(EventScores, OneRunCanCoverABurst) {
  // Two true HOs in quick succession covered by one sustained warning.
  std::vector<int> truth(300, 0), pred(300, 0);
  for (int i = 100; i < 105; ++i) truth[i] = 1;
  for (int i = 120; i < 125; ++i) truth[i] = 1;
  for (int i = 95; i < 126; ++i) pred[i] = 1;
  const EventScores s = score_events(truth, pred, 10);
  EXPECT_EQ(s.matched, 2u);
  EXPECT_DOUBLE_EQ(s.scores.recall, 1.0);
}

}  // namespace
}  // namespace p5g::ml
