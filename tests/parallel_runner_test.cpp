#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "sim/runner.h"

namespace p5g {
namespace {

TEST(ThreadPool, RunsEveryJobAndIsReusable) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  EXPECT_TRUE(pool.wait_idle().empty());
  EXPECT_EQ(count.load(), 100);
  for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  EXPECT_TRUE(pool.wait_idle().empty());
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.wait_idle().empty());  // must not deadlock
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

std::string csv_bytes(const trace::TraceLog& log, const std::string& tag) {
  const std::string path = "/tmp/p5g_runner_" + tag + ".csv";
  EXPECT_TRUE(trace::write_csv(log, path).ok);
  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };
  const std::string bytes = slurp(path) + "\n---ho---\n" + slurp(path + ".ho.csv");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".ho.csv");
  return bytes;
}

std::vector<sim::Scenario> sweep_scenarios() {
  std::vector<sim::Scenario> out;
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    sim::Scenario s;
    s.name = "sweep" + std::to_string(seed);
    s.arch = ran::Arch::kNsa;
    s.nr_band = radio::Band::kNrLow;
    s.mobility = sim::MobilityKind::kFreeway;
    s.duration = Seconds{45.0};
    s.seed = seed;
    out.push_back(std::move(s));
  }
  return out;
}

// The core determinism claim of the parallel runner: its output is the
// serial output, byte for byte, whatever the thread schedule.
TEST(RunScenarios, ParallelOutputByteIdenticalToSerial) {
  const std::vector<sim::Scenario> sweep = sweep_scenarios();
  const std::vector<trace::TraceLog> parallel = sim::run_scenarios(sweep, 3);
  ASSERT_EQ(parallel.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const trace::TraceLog serial = sim::run_scenario(sweep[i]);
    // Constant tags are safe: each csv_bytes call removes its files.
    EXPECT_EQ(csv_bytes(parallel[i], "p"), csv_bytes(serial, "s"))
        << "scenario " << i << " diverged between parallel and serial runs";
  }
}

TEST(RunScenarios, ThreadCountDoesNotChangeResults) {
  const std::vector<sim::Scenario> sweep = sweep_scenarios();
  const std::vector<trace::TraceLog> one = sim::run_scenarios(sweep, 1);
  const std::vector<trace::TraceLog> many = sim::run_scenarios(sweep, 8);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i].ticks.size(), many[i].ticks.size());
    EXPECT_EQ(one[i].handovers.size(), many[i].handovers.size());
    for (std::size_t t = 0; t < one[i].ticks.size(); ++t) {
      ASSERT_DOUBLE_EQ(one[i].ticks[t].throughput_mbps, many[i].ticks[t].throughput_mbps)
          << "scenario " << i << " tick " << t;
    }
  }
}

// Scenarios sharing one (read-only) deployment — the walking-loop corpora
// — must also be schedule-independent.
TEST(RunScenarios, SharedDeploymentOverloadMatchesSerial) {
  sim::Scenario base;
  base.name = "loop";
  base.arch = ran::Arch::kNsa;
  base.nr_band = radio::Band::kNrMmWave;
  base.mobility = sim::MobilityKind::kWalkLoop;
  base.duration = Seconds{60.0};
  base.seed = 21;

  Rng rng(base.seed);
  const geo::Route route = sim::build_route(base, rng);
  Rng dep_rng = rng.fork(7);
  const ran::Deployment deployment(base.carrier, route, dep_rng);

  std::vector<sim::Scenario> loops;
  for (int i = 0; i < 4; ++i) {
    sim::Scenario s = base;
    s.seed = base.seed + 1000u * static_cast<std::uint64_t>(i + 1);
    loops.push_back(std::move(s));
  }
  const auto parallel = sim::run_scenarios(loops, deployment, route, 4);
  ASSERT_EQ(parallel.size(), loops.size());
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const trace::TraceLog serial = sim::run_scenario(loops[i], deployment, route);
    EXPECT_EQ(csv_bytes(parallel[i], "dp"), csv_bytes(serial, "ds")) << "loop " << i;
  }
}

TEST(RunScenarios, EmptySweepReturnsEmpty) {
  EXPECT_TRUE(sim::run_scenarios(std::vector<sim::Scenario>{}).empty());
}

// A one-worker pool must degrade to the serial loop, not deadlock or skip.
TEST(RunScenarios, SingleWorkerMatchesSerial) {
  const std::vector<sim::Scenario> sweep = sweep_scenarios();
  const std::vector<trace::TraceLog> one = sim::run_scenarios(sweep, 1);
  ASSERT_EQ(one.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(csv_bytes(one[i], "w1"), csv_bytes(sim::run_scenario(sweep[i]), "ws"))
        << "scenario " << i;
  }
}

// More workers than scenarios: excess workers idle, nothing runs twice.
TEST(RunScenarios, MoreThreadsThanScenarios) {
  const std::vector<sim::Scenario> sweep = sweep_scenarios();
  const std::vector<trace::TraceLog> wide = sim::run_scenarios(sweep, 32);
  ASSERT_EQ(wide.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(wide[i].ticks.size(), sim::run_scenario(sweep[i]).ticks.size())
        << "scenario " << i;
  }
}

}  // namespace
}  // namespace p5g
