// Integration tests of the mobility-management state machine: drive a UE
// through deployments and check structural invariants of the produced HO
// streams.
#include <gtest/gtest.h>

#include <map>

#include "geo/route.h"
#include "ran/mobility_manager.h"

namespace p5g::ran {
namespace {

struct DriveResult {
  std::vector<HandoverRecord> handovers;
  std::vector<MeasurementReport> reports;
  int ticks_attached_lte = 0;
  int ticks_attached_nr = 0;
  int ticks = 0;
};

DriveResult drive(Arch arch, radio::Band nr_band, Meters length, double speed_mps,
                  std::uint64_t seed, bool mnbh_releases = true) {
  Rng rng(seed);
  geo::Route route({{0.0, 0.0}, {length.v, 0.0}});
  CarrierProfile carrier = arch == Arch::kSa ? profile_opy() : profile_opx();
  if (nr_band == radio::Band::kNrMid) carrier = profile_opy();
  Rng dep_rng = rng.fork(7);
  Deployment dep(carrier, route, dep_rng);

  MobilityManager::Config cfg;
  cfg.arch = arch;
  cfg.nr_band = nr_band;
  cfg.mnbh_releases_scg = mnbh_releases;
  MobilityManager mgr(dep, cfg, rng.fork(1));

  DriveResult out;
  const double dt = 0.05;
  Meters pos{0.0};
  for (Seconds t{0.0}; pos < length; t += Seconds{dt}) {
    pos += Meters{speed_mps * dt};
    const TickResult r = mgr.tick(t, route.position_at(pos), Meters{speed_mps * dt}, pos);
    for (const auto& h : r.completed) out.handovers.push_back(h);
    for (const auto& m : r.reports) out.reports.push_back(m);
    ++out.ticks;
    if (mgr.state().lte_attached()) ++out.ticks_attached_lte;
    if (mgr.state().nr_attached()) ++out.ticks_attached_nr;
  }
  return out;
}

TEST(MobilityManager, NsaDriveProducesHandovers) {
  const DriveResult r = drive(Arch::kNsa, radio::Band::kNrLow, Meters{20000.0}, 30.0, 1);
  EXPECT_GT(r.handovers.size(), 10u);
  EXPECT_GT(r.reports.size(), r.handovers.size() / 2);
}

TEST(MobilityManager, StaysAttachedAlmostAlways) {
  const DriveResult r = drive(Arch::kNsa, radio::Band::kNrLow, Meters{20000.0}, 30.0, 2);
  EXPECT_GT(r.ticks_attached_lte, r.ticks * 95 / 100);
  EXPECT_GT(r.ticks_attached_nr, r.ticks / 2);
}

TEST(MobilityManager, HandoverTimesAreOrdered) {
  const DriveResult r = drive(Arch::kNsa, radio::Band::kNrLow, Meters{15000.0}, 30.0, 3);
  Seconds prev_complete{-1.0};
  for (const HandoverRecord& h : r.handovers) {
    EXPECT_LT(h.decision_time, h.exec_start);
    EXPECT_LT(h.exec_start, h.complete_time);
    EXPECT_NEAR((h.exec_start - h.decision_time).v, ms_to_s(h.timing.t1_ms).v, 1e-6);
    EXPECT_NEAR((h.complete_time - h.exec_start).v, ms_to_s(h.timing.t2_ms).v, 1e-6);
    // One procedure at a time.
    EXPECT_GE(h.decision_time.v, prev_complete.v - 1e-9);
    prev_complete = h.complete_time;
  }
}

TEST(MobilityManager, LteOnlyArchProducesOnlyLteh) {
  const DriveResult r = drive(Arch::kLteOnly, radio::Band::kNrLow, Meters{20000.0}, 30.0, 4);
  ASSERT_GT(r.handovers.size(), 3u);
  for (const HandoverRecord& h : r.handovers) EXPECT_EQ(h.type, HoType::kLteh);
}

TEST(MobilityManager, SaArchProducesOnlyMcgh) {
  const DriveResult r = drive(Arch::kSa, radio::Band::kNrLow, Meters{30000.0}, 30.0, 5);
  ASSERT_GT(r.handovers.size(), 3u);
  for (const HandoverRecord& h : r.handovers) EXPECT_EQ(h.type, HoType::kMcgh);
}

TEST(MobilityManager, NsaProducesMixOfProcedures) {
  const DriveResult r = drive(Arch::kNsa, radio::Band::kNrLow, Meters{40000.0}, 30.0, 6);
  std::map<HoType, int> counts;
  for (const HandoverRecord& h : r.handovers) ++counts[h.type];
  // Anchor changes and SCG additions must both occur.
  EXPECT_GT(counts[HoType::kMnbh] + counts[HoType::kLteh], 0);
  EXPECT_GT(counts[HoType::kScga], 0);
  // No SA procedure in NSA.
  EXPECT_EQ(counts[HoType::kMcgh], 0);
}

TEST(MobilityManager, ScgaOnlyWhenDetached) {
  // Replay the HO sequence and track SCG attachment: SCGA must only start
  // from a detached SCG, SCGM/SCGC/SCGR from an attached one.
  const DriveResult r = drive(Arch::kNsa, radio::Band::kNrLow, Meters{40000.0}, 30.0, 7);
  bool attached = false;
  for (const HandoverRecord& h : r.handovers) {
    switch (h.type) {
      case HoType::kScga:
        EXPECT_FALSE(attached) << "SCGA while attached at t=" << h.decision_time;
        attached = true;
        break;
      case HoType::kScgr:
        EXPECT_TRUE(attached);
        attached = false;
        break;
      case HoType::kScgm:
      case HoType::kScgc:
        EXPECT_TRUE(attached);
        break;
      case HoType::kMnbh:
        EXPECT_TRUE(attached);  // MNBH requires an SCG by construction
        attached = false;       // default config releases the SCG
        break;
      default:
        break;
    }
  }
}

TEST(MobilityManager, MnbhKeepsScgWhenConfigured) {
  const DriveResult rel = drive(Arch::kNsa, radio::Band::kNrLow, Meters{30000.0}, 30.0, 8, true);
  const DriveResult keep = drive(Arch::kNsa, radio::Band::kNrLow, Meters{30000.0}, 30.0, 8, false);
  auto count = [](const DriveResult& r, HoType t) {
    int n = 0;
    for (const auto& h : r.handovers) {
      if (h.type == t) ++n;
    }
    return n;
  };
  // Releasing on MNBH forces re-additions: strictly more SCGA procedures.
  EXPECT_GT(count(rel, HoType::kScga), count(keep, HoType::kScga));
}

TEST(MobilityManager, ScgmStaysWithinGnb) {
  const DriveResult r = drive(Arch::kNsa, radio::Band::kNrMid, Meters{30000.0}, 30.0, 9);
  int scgm = 0;
  for (const HandoverRecord& h : r.handovers) {
    if (h.type != HoType::kScgm) continue;
    ++scgm;
    EXPECT_NE(h.src_pci, h.dst_pci);
    EXPECT_EQ(h.src_band, h.dst_band);
  }
  EXPECT_GT(scgm, 0) << "mid-band sectored deployment should yield SCGM";
}

TEST(MobilityManager, ScgcChangesGnb) {
  const DriveResult r = drive(Arch::kNsa, radio::Band::kNrMmWave, Meters{8000.0}, 12.0, 10);
  for (const HandoverRecord& h : r.handovers) {
    if (h.type != HoType::kScgc) continue;
    EXPECT_NE(h.src_pci, h.dst_pci);
  }
}

TEST(MobilityManager, ReportsPrecedeDecisions) {
  const DriveResult r = drive(Arch::kNsa, radio::Band::kNrLow, Meters{20000.0}, 30.0, 11);
  ASSERT_FALSE(r.handovers.empty());
  ASSERT_FALSE(r.reports.empty());
  // Every HO decision must have at least one report in the preceding 5 s.
  for (const HandoverRecord& h : r.handovers) {
    bool found = false;
    for (const MeasurementReport& m : r.reports) {
      if (m.time <= h.decision_time && h.decision_time - m.time <= 5.0_s) found = true;
    }
    EXPECT_TRUE(found) << "HO at " << h.decision_time << " without recent MR";
  }
}

TEST(MobilityManager, ActiveEventConfigsMatchArch) {
  Rng rng(12);
  geo::Route route({{0, 0}, {1000, 0}});
  Rng dep_rng = rng.fork(7);
  Deployment dep(profile_opx(), route, dep_rng);
  for (Arch arch : {Arch::kLteOnly, Arch::kNsa, Arch::kSa}) {
    MobilityManager::Config cfg;
    cfg.arch = arch;
    MobilityManager mgr(dep, cfg, rng.fork(static_cast<std::uint64_t>(arch)));
    const auto configs = mgr.active_event_configs();
    bool has_nr_scope = false, has_lte_scope = false;
    for (const auto& c : configs) {
      (c.scope == MeasScope::kServingNr ? has_nr_scope : has_lte_scope) = true;
    }
    if (arch == Arch::kLteOnly) {
      EXPECT_FALSE(has_nr_scope);
    }
    if (arch == Arch::kNsa) {
      EXPECT_TRUE(has_nr_scope && has_lte_scope);
    }
    if (arch == Arch::kSa) {
      EXPECT_FALSE(has_lte_scope);
    }
  }
}

TEST(MobilityManager, DeterministicForSameSeed) {
  const DriveResult a = drive(Arch::kNsa, radio::Band::kNrLow, Meters{10000.0}, 30.0, 13);
  const DriveResult b = drive(Arch::kNsa, radio::Band::kNrLow, Meters{10000.0}, 30.0, 13);
  ASSERT_EQ(a.handovers.size(), b.handovers.size());
  for (std::size_t i = 0; i < a.handovers.size(); ++i) {
    EXPECT_EQ(a.handovers[i].type, b.handovers[i].type);
    EXPECT_DOUBLE_EQ(a.handovers[i].decision_time.v, b.handovers[i].decision_time.v);
  }
}

}  // namespace
}  // namespace p5g::ran
