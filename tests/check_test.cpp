// Contract-layer API tests valid under ANY build configuration: the handler
// plumbing and kind metadata are compiled unconditionally, and the macro
// evaluation test adapts to whether this TU has checks active. The
// always-enforced trip tests live in check_enforced_test.cpp (compiled with
// P5G_CHECKS_ENABLED forced on).
#include "common/check.h"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace p5g {
namespace {

using check::Failure;
using check::Handler;
using check::Kind;

[[noreturn]] void throwing_handler(const Failure& f) {
  throw std::runtime_error(std::string(check::kind_name(f.kind)) + ": " +
                           f.expression);
}

// Installs a throwing handler for one test body and restores the previous
// one on scope exit, so a trip never leaks into later tests as an abort.
class ThrowingHandlerScope {
 public:
  ThrowingHandlerScope() : prev_(check::set_handler(&throwing_handler)) {}
  ~ThrowingHandlerScope() { check::set_handler(prev_); }

 private:
  Handler prev_;
};

TEST(Check, KindNames) {
  EXPECT_STREQ(check::kind_name(Kind::kRequire), "REQUIRE");
  EXPECT_STREQ(check::kind_name(Kind::kAssert), "ASSERT");
  EXPECT_STREQ(check::kind_name(Kind::kEnsure), "ENSURE");
}

TEST(Check, FailRoutesThroughInstalledHandler) {
  ThrowingHandlerScope scope;
  EXPECT_THROW(check::fail(Kind::kRequire, "x > 0", "f.cpp", 12, "msg"),
               std::runtime_error);
}

Failure g_last_failure{};

[[noreturn]] void recording_handler(const Failure& f) {
  g_last_failure = f;
  throw std::runtime_error("trip");
}

TEST(Check, HandlerSeesFailureDetails) {
  const Handler prev = check::set_handler(&recording_handler);
  EXPECT_THROW(check::fail(Kind::kEnsure, "a == b", "file.cpp", 7, "m"),
               std::runtime_error);
  check::set_handler(prev);
  EXPECT_EQ(g_last_failure.kind, Kind::kEnsure);
  EXPECT_STREQ(g_last_failure.expression, "a == b");
  EXPECT_STREQ(g_last_failure.file, "file.cpp");
  EXPECT_EQ(g_last_failure.line, 7);
  EXPECT_STREQ(g_last_failure.message, "m");
}

TEST(Check, SetHandlerReturnsPreviousAndNullRestoresDefault) {
  const Handler default_h = check::set_handler(&throwing_handler);
  // Installing again returns what we just installed.
  EXPECT_EQ(check::set_handler(&recording_handler), &throwing_handler);
  // nullptr restores the default, and the default is what the first call
  // displaced.
  EXPECT_EQ(check::set_handler(nullptr), &recording_handler);
  EXPECT_EQ(check::set_handler(default_h), default_h);
}

// The compile-out guarantee: in builds without checks the condition operand
// is never evaluated (zero overhead); with checks it runs exactly once.
TEST(Check, MacrosEvaluateConditionOnlyWhenChecksAreCompiledIn) {
  int evals = 0;
  P5G_REQUIRE((++evals, true));
  P5G_ASSERT((++evals, true), "with a message");
  P5G_ENSURE((++evals, true));
  EXPECT_EQ(evals, P5G_CHECKS_ENABLED ? 3 : 0);
}

TEST(Check, PassingConditionsNeverInvokeHandler) {
  ThrowingHandlerScope scope;
  EXPECT_NO_THROW(P5G_REQUIRE(2 + 2 == 4));
  EXPECT_NO_THROW(P5G_ASSERT(true, "never shown"));
  EXPECT_NO_THROW(P5G_ENSURE(1 < 2));
}

// p5g_tests compiles with the same global flag set as the libraries, so the
// runtime probe must agree with this TU's macro.
TEST(Check, LibraryProbeMatchesThisTranslationUnit) {
  EXPECT_EQ(check::library_checks_enabled(), P5G_CHECKS_ENABLED != 0);
}

}  // namespace
}  // namespace p5g
