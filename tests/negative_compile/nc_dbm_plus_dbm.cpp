// MUST NOT COMPILE: absolute power levels do not add. Summing two dBm
// readings is the canonical unit bug this library exists to prevent —
// combine powers in the linear domain (to_mw) instead.
#include "common/units.h"

namespace p5g {

constexpr Dbm bad_sum() {
  constexpr Dbm serving{-95.0};
  constexpr Dbm neighbor{-97.0};
  return serving + neighbor;  // no operator+(Dbm, Dbm): must fail
}

}  // namespace p5g
