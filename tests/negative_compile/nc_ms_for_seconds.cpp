// MUST NOT COMPILE: a millisecond duration passed where simulated seconds
// are expected. Before the unit types, this off-by-1000x slipped through
// as a plain double and corrupted handover timelines silently.
#include "common/units.h"

namespace p5g {

inline SimSeconds advance(SimSeconds now, SimSeconds dt) { return now + dt; }

inline SimSeconds bad_advance() {
  constexpr Millis t304{200.0};
  return advance(SimSeconds{10.0}, t304);  // Millis is not SimSeconds: must fail
}

}  // namespace p5g
