// Positive control for the negative-compile suite: the unit algebra that IS
// physically meaningful must compile. If this file breaks, the negative
// tests below prove nothing (a failing compiler invocation would "pass").
#include "common/units.h"

namespace p5g {

constexpr Db margin() {
  constexpr Dbm rsrp{-95.0};
  constexpr Dbm threshold{-110.0};
  constexpr Db hysteresis{3.0};
  constexpr Dbm biased = rsrp + hysteresis;   // level + ratio -> level
  return biased - threshold;                  // level - level -> ratio
}
static_assert(margin().v > 0.0);

constexpr SimSeconds later() {
  using namespace unit_literals;
  constexpr SimSeconds t0{1.5};
  constexpr Millis t1_ms = 80.0_ms;
  return t0 + ms_to_s(t1_ms);                 // explicit ms -> s conversion
}
static_assert(later().v > 1.5);

}  // namespace p5g
