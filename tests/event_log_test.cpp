// Flight-recorder tests: ring accounting (single- and multi-threaded),
// the kill switch, golden-trace neutrality (recorder on/off must not move a
// simulated byte), the binary spill codec, the Perfetto exporter, and the
// tentpole acceptance criterion — analysis::ho_timeline reconstructions
// agree with analysis::ho_stats EXACTLY over a multi-seed faulted corpus.
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/ho_stats.h"
#include "analysis/ho_timeline.h"
#include "obs/events.h"

#include "common/units.h"
#include "obs/export.h"
#include "ran/deployment.h"
#include "sim/scenario.h"
#include "trace/event_trace.h"

using namespace p5g;

namespace {

// Every test resets the recorder to a known state: events enabled, default
// capacity, empty rings. (ctest runs each test in its own process, but the
// bare ./p5g_tests binary runs them all in one.)
void reset_recorder() {
  obs::set_events_enabled(true);
  obs::event_log().set_capacity(obs::EventLog::kDefaultCapacity);
  obs::event_log().clear();
  obs::set_trace_ue(0);
}

obs::Event instant_at(double t, std::int32_t tag) {
  obs::Event e;
  e.kind = obs::EventKind::kInstant;
  e.category = obs::EventCategory::kTick;
  e.t0 = t;
  e.t1 = t;
  e.i0 = tag;
  return e;
}

// ------------------------------------------------------ ring accounting --

TEST(EventLogRing, OverflowAccountingIsExact) {
  reset_recorder();
  obs::event_log().set_capacity(64);

  const int n = 200;
  for (int i = 0; i < n; ++i) {
    obs::event_log().emit(instant_at(static_cast<double>(i), i));
  }
  EXPECT_EQ(obs::event_log().emitted(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(obs::event_log().dropped(), static_cast<std::uint64_t>(n - 64));

  // The retained window is exactly the newest 64 events, in order.
  const std::vector<obs::Event> kept = obs::event_log().snapshot();
  ASSERT_EQ(kept.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(kept[static_cast<std::size_t>(i)].i0, n - 64 + i);
  }
  reset_recorder();
}

TEST(EventLogRing, MultiThreadHammerAccountsEveryEvent) {
  reset_recorder();
  constexpr std::size_t kCap = 1024;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  obs::event_log().set_capacity(kCap);

  // Ring leases release at thread EXIT, so on a small box a worker that
  // finishes early could die and donate its ring to the next worker,
  // collapsing the per-thread accounting. Hold every worker alive until ALL
  // have finished emitting — then each of the four holds a DISTINCT ring for
  // the whole hammer and the retained/dropped split is exactly predictable.
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w, &done] {
      obs::set_trace_ue(static_cast<std::uint32_t>(w + 1));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        obs::event_log().emit(
            instant_at(static_cast<double>(i), static_cast<std::int32_t>(i)));
      }
      done.fetch_add(1);
      while (done.load(std::memory_order_acquire) != kThreads) {
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(obs::event_log().emitted(), kThreads * kPerThread);
  EXPECT_EQ(obs::event_log().dropped(), kThreads * (kPerThread - kCap));

  // Each UE retains exactly its newest kCap events.
  const std::vector<obs::Event> kept = obs::event_log().snapshot();
  ASSERT_EQ(kept.size(), kThreads * kCap);
  std::map<std::uint32_t, std::vector<std::int32_t>> by_ue;
  for (const obs::Event& e : kept) by_ue[e.ue].push_back(e.i0);
  ASSERT_EQ(by_ue.size(), static_cast<std::size_t>(kThreads));
  for (auto& [ue, tags] : by_ue) {
    ASSERT_EQ(tags.size(), kCap) << "ue " << ue;
    std::sort(tags.begin(), tags.end());
    for (std::size_t i = 0; i < kCap; ++i) {
      EXPECT_EQ(tags[i],
                static_cast<std::int32_t>(kPerThread - kCap + i));
    }
  }
  reset_recorder();
}

TEST(EventLogRing, KillSwitchStopsEmission) {
  reset_recorder();
  obs::event_log().emit(instant_at(1.0, 1));
  EXPECT_EQ(obs::event_log().emitted(), 1u);

  obs::set_events_enabled(false);
  obs::event_log().emit(instant_at(2.0, 2));
  EXPECT_EQ(obs::event_log().emitted(), 1u);

  obs::set_events_enabled(true);
  obs::event_log().emit(instant_at(3.0, 3));
  EXPECT_EQ(obs::event_log().emitted(), 2u);
  reset_recorder();
}

// --------------------------------------------------- golden neutrality --

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

sim::Scenario golden_scenario() {
  sim::Scenario s;
  s.name = "golden_zero_fault";
  s.carrier = ran::profile_opx();
  s.arch = ran::Arch::kNsa;
  s.nr_band = radio::Band::kNrLow;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = Seconds{90.0};
  s.seed = 42;
  return s;
}

// The recorder's core invariant: tracing is pure observation. The golden
// tick CSV must come out byte-identical whether the recorder is on or off.
TEST(EventLogGolden, RecorderOnOffLeavesGoldenTraceByteIdentical) {
  const std::string golden =
      std::string(P5G_GOLDEN_DIR) + "/zero_fault_seed42.csv";
  const std::string golden_ticks = slurp(golden);
  ASSERT_FALSE(golden_ticks.empty()) << "golden trace missing: " << golden;

  reset_recorder();
  const std::string on_path = "/tmp/p5g_event_golden_on.csv";
  ASSERT_TRUE(trace::write_csv(sim::run_scenario(golden_scenario()), on_path).ok);
  EXPECT_GT(obs::event_log().emitted(), 0u) << "recorder saw no events while on";
  EXPECT_EQ(slurp(on_path), golden_ticks) << "recorder ON changed the trace";

  obs::set_events_enabled(false);
  const std::uint64_t before = obs::event_log().emitted();
  const std::string off_path = "/tmp/p5g_event_golden_off.csv";
  ASSERT_TRUE(
      trace::write_csv(sim::run_scenario(golden_scenario()), off_path).ok);
  EXPECT_EQ(obs::event_log().emitted(), before) << "kill switch leaked events";
  EXPECT_EQ(slurp(off_path), golden_ticks) << "recorder OFF changed the trace";

  std::filesystem::remove(on_path);
  std::filesystem::remove(on_path + ".ho.csv");
  std::filesystem::remove(off_path);
  std::filesystem::remove(off_path + ".ho.csv");
  reset_recorder();
}

// ------------------------------------------------------- binary codec --

trace::EventTrace sample_trace() {
  trace::EventTrace t;
  t.run = "codec_test";
  t.seed = 99;
  t.emitted = 3;
  t.dropped = 1;
  obs::Event span;
  span.kind = obs::EventKind::kSpan;
  span.category = obs::EventCategory::kHoPrep;
  span.t0 = 1.25;
  span.t1 = 1.3125;
  span.a0 = 62.5;
  span.a1 = 1234.5;
  span.flow = 7;
  span.i0 = 101;
  span.i1 = -1;
  span.ue = 3;
  span.i2 = 0x1234;
  t.events.push_back(span);
  obs::Event wall;
  wall.kind = obs::EventKind::kWallInstant;
  wall.category = obs::EventCategory::kCheckpoint;
  wall.t0 = 0.001;
  wall.t1 = 0.001;
  wall.i0 = 12;
  wall.i1 = 64;
  t.events.push_back(wall);
  return t;
}

TEST(EventTraceCodec, BinaryRoundTripIsExact) {
  const trace::EventTrace t = sample_trace();
  const std::string bytes = trace::encode_event_trace(t);
  std::string why;
  const auto back = trace::decode_event_trace(bytes, &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(back->run, t.run);
  EXPECT_EQ(back->seed, t.seed);
  EXPECT_EQ(back->emitted, t.emitted);
  EXPECT_EQ(back->dropped, t.dropped);
  ASSERT_EQ(back->events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    // Bitwise equality — the doubles must survive verbatim.
    EXPECT_EQ(std::memcmp(&back->events[i], &t.events[i], sizeof(obs::Event)),
              0)
        << "event " << i << " did not round-trip bit-for-bit";
  }
}

TEST(EventTraceCodec, SaveLoadRoundTripsThroughDisk) {
  const std::string path = "/tmp/p5g_event_codec.bin";
  const trace::EventTrace t = sample_trace();
  ASSERT_TRUE(trace::save_event_trace(path, t).ok);
  std::string why;
  const auto back = trace::load_event_trace(path, &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(back->events.size(), t.events.size());
  std::filesystem::remove(path);
}

TEST(EventTraceCodec, RejectsTruncationAndCorruption) {
  const std::string bytes = trace::encode_event_trace(sample_trace());
  std::string why;

  // Any truncation point must be rejected (CRC or framing).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{10}, bytes.size() - 5,
        bytes.size() - 1}) {
    EXPECT_FALSE(trace::decode_event_trace(bytes.substr(0, keep), &why))
        << "accepted a " << keep << "-byte prefix";
  }

  // A single flipped bit anywhere must fail the CRC seal.
  for (const std::size_t pos : {std::size_t{0}, std::size_t{9},
                                bytes.size() / 2, bytes.size() - 1}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_FALSE(trace::decode_event_trace(bad, &why))
        << "accepted a bit flip at " << pos;
  }

  // Trailing garbage changes the CRC input — also rejected.
  EXPECT_FALSE(trace::decode_event_trace(bytes + "x", &why));

  // A corrupted category byte must be rejected even when the CRC is
  // re-sealed (decoder-side range check, not just the checksum).
  trace::EventTrace evil = sample_trace();
  evil.events[0].category = static_cast<obs::EventCategory>(250);
  EXPECT_FALSE(trace::decode_event_trace(trace::encode_event_trace(evil), &why));
  EXPECT_NE(why.find("category"), std::string::npos);
}

// ---------------------------------------------------- Perfetto export --

TEST(PerfettoExport, JsonParsesAndCarriesBothTimelines) {
  const std::string json = trace::to_perfetto_json(sample_trace());
  const auto parsed = obs::parse_json(json);
  ASSERT_TRUE(parsed.has_value()) << "exporter produced unparseable JSON";

  const obs::JsonValue* events = parsed->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, obs::JsonValue::Type::kArray);

  bool saw_span = false, saw_instant = false, saw_wall_pid = false;
  for (const obs::JsonValue& e : events->array) {
    const obs::JsonValue* ph = e.get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") continue;  // track metadata
    EXPECT_NE(e.get("name"), nullptr);
    EXPECT_NE(e.get("pid"), nullptr);
    EXPECT_NE(e.get("tid"), nullptr);
    EXPECT_NE(e.get("ts"), nullptr);
    if (ph->string == "X") {
      saw_span = true;
      EXPECT_NE(e.get("dur"), nullptr);
    }
    if (ph->string == "i") saw_instant = true;
    if (p5g::bit_equal(e.get("pid")->number, 2.0)) saw_wall_pid = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_wall_pid);

  // The sim span lands on pid 1 with tid == its UE and sim-µs timestamps.
  bool found_prep = false;
  for (const obs::JsonValue& e : events->array) {
    const obs::JsonValue* name = e.get("name");
    if (name == nullptr || name->string.rfind("ho.prep", 0) != 0) continue;
    found_prep = true;
    EXPECT_EQ(e.get("pid")->number, 1.0);
    EXPECT_EQ(e.get("tid")->number, 3.0);
    EXPECT_EQ(e.get("ts")->number, 1.25e6);
    EXPECT_EQ(e.get("dur")->number, 62500.0);
  }
  EXPECT_TRUE(found_prep);
}

// --------------------------------------- timeline == ho_stats, exactly --

sim::Scenario faulty_scenario(std::uint64_t seed) {
  sim::Scenario s;
  s.name = "timeline_corpus";
  s.arch = ran::Arch::kNsa;
  s.nr_band = radio::Band::kNrLow;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = Seconds{420.0};
  s.seed = seed;
  s.faults.prep_failure.fill(0.12);
  s.faults.exec_failure.fill(0.45);
  s.faults.rlf_enabled = true;
  s.faults.rlf_qout_dbm = Dbm{-78.0};
  s.faults.rlf_t310 = Seconds{0.6};
  return s;
}

// The tentpole acceptance criterion: phase stats reconstructed from the
// event stream agree EXACTLY (==, not near) with the ones computed from the
// trace log, across a 5-seed faulted corpus covering all four outcomes.
TEST(HoTimelineReconstruction, MatchesHoStatsExactlyAcrossSeeds) {
  int total_hos = 0;
  analysis::OutcomeCounts corpus_outcomes;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    reset_recorder();
    const trace::TraceLog log = sim::run_scenario(faulty_scenario(seed));
    ASSERT_EQ(obs::event_log().dropped(), 0u)
        << "ring evicted history; grow capacity for this corpus";

    const std::vector<analysis::HoTimeline> tls =
        analysis::ho_timelines(obs::event_log().snapshot());
    const std::vector<ran::HandoverRecord> rebuilt =
        analysis::timeline_records(tls);
    ASSERT_EQ(rebuilt.size(), log.handovers.size()) << "seed " << seed;

    for (std::size_t i = 0; i < rebuilt.size(); ++i) {
      const ran::HandoverRecord& a = log.handovers[i];
      const ran::HandoverRecord& b = rebuilt[i];
      ASSERT_EQ(a.type, b.type) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.outcome, b.outcome) << "seed " << seed << " ho " << i;
      // Exact double equality is intentional everywhere below: the events
      // carry these values verbatim, so any != is a recorder bug.
      ASSERT_EQ(a.decision_time, b.decision_time) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.exec_start, b.exec_start) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.complete_time, b.complete_time) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.timing.t1_ms, b.timing.t1_ms) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.timing.t2_ms, b.timing.t2_ms) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.src_pci, b.src_pci) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.dst_pci, b.dst_pci) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.src_band, b.src_band) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.dst_band, b.dst_band) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.colocated, b.colocated) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.route_position, b.route_position) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.rach_attempts, b.rach_attempts) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.backoff_ms, b.backoff_ms) << "seed " << seed << " ho " << i;
      ASSERT_EQ(a.reestablish_ms, b.reestablish_ms) << "seed " << seed << " ho " << i;
    }

    // Aggregates too — same inputs must mean same outputs, but this guards
    // the plumbing (grouping, ordering, outcome filters) end to end.
    const auto log_durations = analysis::duration_by_type(log.handovers);
    const auto tl_durations = analysis::duration_by_type(rebuilt);
    ASSERT_EQ(log_durations.size(), tl_durations.size());
    for (const auto& [type, d] : log_durations) {
      const auto it = tl_durations.find(type);
      ASSERT_NE(it, tl_durations.end());
      EXPECT_EQ(d.t1_ms, it->second.t1_ms);
      EXPECT_EQ(d.t2_ms, it->second.t2_ms);
      EXPECT_EQ(d.total_ms, it->second.total_ms);
    }
    const analysis::RetryStats lr = analysis::retry_stats(log.handovers);
    const analysis::RetryStats tr = analysis::retry_stats(rebuilt);
    EXPECT_EQ(lr.mean_rach_attempts, tr.mean_rach_attempts);
    EXPECT_EQ(lr.max_rach_attempts, tr.max_rach_attempts);
    EXPECT_EQ(lr.total_backoff_ms, tr.total_backoff_ms);
    EXPECT_EQ(lr.mean_backoff_ms, tr.mean_backoff_ms);
    EXPECT_EQ(lr.total_reestablish_ms, tr.total_reestablish_ms);
    EXPECT_EQ(lr.reestablishments, tr.reestablishments);

    const analysis::OutcomeCounts oc = analysis::count_outcomes(log.handovers);
    const analysis::OutcomeCounts tc = analysis::count_outcomes(rebuilt);
    EXPECT_EQ(oc.success, tc.success);
    EXPECT_EQ(oc.prep_failure, tc.prep_failure);
    EXPECT_EQ(oc.exec_failure, tc.exec_failure);
    EXPECT_EQ(oc.rlf_reestablish, tc.rlf_reestablish);
    corpus_outcomes.success += oc.success;
    corpus_outcomes.prep_failure += oc.prep_failure;
    corpus_outcomes.exec_failure += oc.exec_failure;
    corpus_outcomes.rlf_reestablish += oc.rlf_reestablish;
    total_hos += static_cast<int>(log.handovers.size());
  }
  // The corpus must actually exercise every reconstruction path.
  EXPECT_GT(total_hos, 50);
  EXPECT_GT(corpus_outcomes.success, 0);
  EXPECT_GT(corpus_outcomes.prep_failure, 0);
  EXPECT_GT(corpus_outcomes.exec_failure, 0);
  EXPECT_GT(corpus_outcomes.rlf_reestablish, 0);
  reset_recorder();
}

}  // namespace
