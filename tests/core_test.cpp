// Unit tests of the Prognos pipeline on synthetic control-plane streams.
#include <gtest/gtest.h>

#include "core/decision_learner.h"
#include "core/prognos.h"
#include "core/report_predictor.h"

namespace p5g::core {
namespace {

using ran::EventType;
using ran::HoType;
using ran::MeasScope;

EventKey key(EventType t, MeasScope s) { return {t, s}; }

PrognosInput tick_at(Seconds t) {
  PrognosInput in;
  in.time = t;
  in.lte_serving_pci = 1;
  in.nr_serving_pci = 2;
  return in;
}

ran::MeasurementReport mr(EventType type, MeasScope scope, Seconds t) {
  ran::MeasurementReport r;
  r.time = t;
  r.event = type;
  r.scope = scope;
  return r;
}

ran::HandoverRecord command(HoType type, Seconds t) {
  ran::HandoverRecord h;
  h.type = type;
  h.decision_time = t;
  return h;
}

// ------------------------------------------------------ decision learner --
TEST(DecisionLearner, LearnsSuffixPatterns) {
  DecisionLearner learner;
  for (int phase = 0; phase < 3; ++phase) {
    PrognosInput in = tick_at(Seconds{phase * 10.0});
    in.reports = {mr(EventType::kB1, MeasScope::kServingLte, in.time)};
    learner.observe(in);
    PrognosInput cmd = tick_at(Seconds{phase * 10.0 + 1.0});
    cmd.ho_commands = {command(HoType::kScga, cmd.time)};
    EXPECT_TRUE(learner.observe(cmd));
  }
  ASSERT_FALSE(learner.patterns().empty());
  const Pattern& p = learner.patterns().front();
  EXPECT_EQ(p.ho, HoType::kScga);
  ASSERT_EQ(p.sequence.size(), 1u);
  EXPECT_EQ(p.sequence[0], key(EventType::kB1, MeasScope::kServingLte));
  EXPECT_EQ(p.support, 3);
}

TEST(DecisionLearner, RegistersAllSuffixLengths) {
  DecisionLearner learner;
  PrognosInput in = tick_at(Seconds{0.0});
  in.reports = {mr(EventType::kA2, MeasScope::kServingNr, Seconds{0.0}),
                mr(EventType::kB1, MeasScope::kServingNr, Seconds{0.0})};
  learner.observe(in);
  PrognosInput cmd = tick_at(Seconds{1.0});
  cmd.ho_commands = {command(HoType::kScgc, cmd.time)};
  learner.observe(cmd);
  // Suffixes [B1] and [A2, B1].
  EXPECT_EQ(learner.patterns().size(), 2u);
}

TEST(DecisionLearner, PhaseMemoryExpiresOldReports) {
  DecisionLearner::Config cfg;
  cfg.phase_memory = Seconds{5.0};
  DecisionLearner learner(cfg);
  PrognosInput early = tick_at(Seconds{0.0});
  early.reports = {mr(EventType::kB1, MeasScope::kServingNr, Seconds{0.0})};
  learner.observe(early);
  // 10 s later the B1 no longer belongs to the open phase.
  PrognosInput late = tick_at(Seconds{10.0});
  late.reports = {mr(EventType::kA2, MeasScope::kServingNr, Seconds{10.0})};
  learner.observe(late);
  EXPECT_EQ(learner.open_phase().size(), 1u);
  EXPECT_EQ(learner.open_phase()[0], key(EventType::kA2, MeasScope::kServingNr));
}

TEST(DecisionLearner, EvictsStalePatterns) {
  DecisionLearner::Config cfg;
  cfg.freshness_threshold = 5;
  DecisionLearner learner(cfg);
  // One old pattern...
  PrognosInput in = tick_at(Seconds{0.0});
  in.reports = {mr(EventType::kA3, MeasScope::kServingLte, Seconds{0.0})};
  learner.observe(in);
  PrognosInput cmd = tick_at(Seconds{0.5});
  cmd.ho_commands = {command(HoType::kLteh, cmd.time)};
  learner.observe(cmd);
  EXPECT_EQ(learner.patterns().size(), 1u);
  // ...then many phases of a different pattern push it past freshness.
  for (int i = 1; i <= 8; ++i) {
    PrognosInput r = tick_at(Seconds{i * 2.0});
    r.reports = {mr(EventType::kA2, MeasScope::kServingNr, r.time)};
    learner.observe(r);
    PrognosInput c = tick_at(Seconds{i * 2.0 + 0.5});
    c.ho_commands = {command(HoType::kScgr, c.time)};
    learner.observe(c);
  }
  for (const Pattern& p : learner.patterns()) {
    EXPECT_NE(p.ho, HoType::kLteh) << "stale LTEH pattern should be evicted";
  }
  EXPECT_GT(learner.patterns_evicted_total(), 0);
}

TEST(DecisionLearner, EvictionCanBeDisabled) {
  DecisionLearner::Config cfg;
  cfg.freshness_threshold = 1;
  cfg.eviction_enabled = false;
  DecisionLearner learner(cfg);
  for (int i = 0; i < 10; ++i) {
    PrognosInput r = tick_at(Seconds{i * 2.0});
    r.reports = {mr(i == 0 ? EventType::kA3 : EventType::kA2,
                    i == 0 ? MeasScope::kServingLte : MeasScope::kServingNr, r.time)};
    learner.observe(r);
    PrognosInput c = tick_at(Seconds{i * 2.0 + 0.5});
    c.ho_commands = {command(i == 0 ? HoType::kLteh : HoType::kScgr, c.time)};
    learner.observe(c);
  }
  bool lteh_alive = false;
  for (const Pattern& p : learner.patterns()) {
    if (p.ho == HoType::kLteh) lteh_alive = true;
  }
  EXPECT_TRUE(lteh_alive);
  EXPECT_EQ(learner.patterns_evicted_total(), 0);
}

TEST(DecisionLearner, BootstrapSeedsWithSupport) {
  DecisionLearner learner;
  learner.bootstrap(frequent_bootstrap_patterns());
  EXPECT_GE(learner.patterns().size(), 7u);
  for (const Pattern& p : learner.patterns()) EXPECT_GE(p.support, 5);
}

// ------------------------------------------------------ report predictor --
std::vector<ran::EventConfig> a2_only_config() {
  ran::EventConfig c;
  c.type = EventType::kA2;
  c.scope = MeasScope::kServingNr;
  c.neighbor_rat = radio::Rat::kNr;
  c.threshold1 = Dbm{-100.0};
  c.hysteresis = Db{1.0};
  c.ttt_ms = Millis{150.0};
  return {c};
}

PrognosInput nr_obs_tick(Seconds t, double rsrp) {
  PrognosInput in;
  in.time = t;
  in.lte_serving_pci = 1;
  in.nr_serving_pci = 2;
  in.observed.push_back({2, 0, radio::Band::kNrLow, Dbm{rsrp}});
  return in;
}

TEST(ReportPredictor, PredictsA2OnDecayingSignal) {
  ReportPredictor::Config cfg;
  cfg.margin_min_db = Db{0.5};
  ReportPredictor rp(a2_only_config(), cfg);
  bool predicted = false;
  // Steep decay: -95 dBm falling 8 dB/s toward the -100 threshold.
  for (int i = 0; i < 40 && !predicted; ++i) {
    const Seconds t{i * 0.05};
    const auto fresh = rp.update(nr_obs_tick(t, -93.0 - 8.0 * t.v));
    for (const PredictedReport& p : fresh) {
      if (p.key == key(EventType::kA2, MeasScope::kServingNr)) {
        predicted = true;
        EXPECT_GT(p.expected_time, p.predicted_at);
      }
    }
  }
  EXPECT_TRUE(predicted);
}

TEST(ReportPredictor, SilentOnStrongStableSignal) {
  ReportPredictor rp(a2_only_config(), {});
  for (int i = 0; i < 60; ++i) {
    const auto fresh = rp.update(nr_obs_tick(Seconds{i * 0.05}, -80.0));
    EXPECT_TRUE(fresh.empty());
  }
}

TEST(ReportPredictor, LatchedMirrorBlocksRePrediction) {
  ReportPredictor::Config cfg;
  cfg.margin_min_db = Db{0.5};
  ReportPredictor rp(a2_only_config(), cfg);
  int predictions = 0;
  // Signal already below threshold: the real monitor latches quickly; the
  // predictor must not spam predictions while latched.
  for (int i = 0; i < 200; ++i) {
    predictions += static_cast<int>(rp.update(nr_obs_tick(Seconds{i * 0.05}, -110.0)).size());
  }
  EXPECT_LE(predictions, 1);
  EXPECT_TRUE(rp.mirror_reported(key(EventType::kA2, MeasScope::kServingNr)));
}

TEST(ReportPredictor, ForecastTracksTrend) {
  ReportPredictor rp(a2_only_config(), {});
  for (int i = 0; i < 20; ++i) {
    rp.update(nr_obs_tick(Seconds{i * 0.05}, -90.0 - 0.25 * i));
  }
  // Last sample about -94.75, slope -5 dB/s.
  EXPECT_LT(rp.forecast_rsrp(2, 20), -94.0);
  EXPECT_DOUBLE_EQ(rp.forecast_rsrp(999, 5), -140.0);  // unknown pci
}

// ---------------------------------------------------------------- prognos --
core::Prognos make_prognos(bool bootstrap = true) {
  std::vector<ran::EventConfig> configs;
  for (const auto& c : ran::default_lte_event_set(radio::Band::kNrLow)) configs.push_back(c);
  for (const auto& c : ran::default_nsa_nr_event_set(radio::Band::kNrLow)) configs.push_back(c);
  Prognos::Config cfg;
  cfg.confirm_ticks = 1;
  Prognos p(configs, cfg);
  if (bootstrap) p.bootstrap_with_frequent_patterns();
  return p;
}

TEST(Prognos, PredictsFromActualReportsAgainstLearnedPattern) {
  Prognos prognos = make_prognos();
  // An actual NR-A2 report arrives with no HO yet: the [A2]->SCGR pattern
  // (bootstrapped) should produce a prediction.
  PrognosInput in = tick_at(Seconds{1.0});
  in.reports = {mr(EventType::kA2, MeasScope::kServingNr, Seconds{1.0})};
  const PrognosPrediction p = prognos.tick(in);
  ASSERT_TRUE(p.ho.has_value());
  EXPECT_EQ(*p.ho, HoType::kScgr);
  EXPECT_LT(p.ho_score, 1.0);  // release collapses throughput
}

TEST(Prognos, AdjudicatesScgcWhenCandidateVisible) {
  Prognos prognos = make_prognos();
  PrognosInput in = tick_at(Seconds{1.0});
  in.reports = {mr(EventType::kA2, MeasScope::kServingNr, Seconds{1.0})};
  // A strong different-gNB NR neighbor is visible.
  in.observed.push_back({2, 0, radio::Band::kNrLow, Dbm{-62.0}});   // serving
  in.observed.push_back({9, 1, radio::Band::kNrLow, Dbm{-50.0}});   // candidate
  const PrognosPrediction p = prognos.tick(in);
  ASSERT_TRUE(p.ho.has_value());
  EXPECT_EQ(*p.ho, HoType::kScgc);
}

TEST(Prognos, SanityCheckBlocksScgaWhenAttached) {
  Prognos prognos = make_prognos();
  PrognosInput in = tick_at(Seconds{1.0});  // NR attached (pci 2)
  in.reports = {mr(EventType::kB1, MeasScope::kServingLte, Seconds{1.0})};
  const PrognosPrediction p = prognos.tick(in);
  EXPECT_FALSE(p.ho.has_value() && *p.ho == HoType::kScga);
}

TEST(Prognos, PredictsScgaWhenDetached) {
  Prognos prognos = make_prognos();
  PrognosInput in = tick_at(Seconds{1.0});
  in.nr_serving_pci = -1;  // detached
  in.reports = {mr(EventType::kB1, MeasScope::kServingLte, Seconds{1.0})};
  const PrognosPrediction p = prognos.tick(in);
  ASSERT_TRUE(p.ho.has_value());
  EXPECT_EQ(*p.ho, HoType::kScga);
  EXPECT_GT(p.ho_score, 1.0);  // addition boosts throughput
}

TEST(Prognos, NoHoMeansScoreOne) {
  Prognos prognos = make_prognos();
  const PrognosPrediction p = prognos.tick(tick_at(Seconds{1.0}));
  EXPECT_FALSE(p.ho.has_value());
  EXPECT_DOUBLE_EQ(p.ho_score, 1.0);
}

TEST(Prognos, HoCommandClearsPrediction) {
  Prognos prognos = make_prognos();
  PrognosInput in = tick_at(Seconds{1.0});
  in.reports = {mr(EventType::kA2, MeasScope::kServingNr, Seconds{1.0})};
  ASSERT_TRUE(prognos.tick(in).ho.has_value());
  PrognosInput cmd = tick_at(Seconds{1.05});
  cmd.ho_commands = {command(HoType::kScgr, Seconds{1.05})};
  cmd.nr_serving_pci = -1;
  const PrognosPrediction after = prognos.tick(cmd);
  EXPECT_FALSE(after.ho.has_value());
}

TEST(Prognos, PredictionHeldAcrossBriefDropouts) {
  Prognos prognos = make_prognos();
  PrognosInput in = tick_at(Seconds{1.0});
  in.reports = {mr(EventType::kA2, MeasScope::kServingNr, Seconds{1.0})};
  ASSERT_TRUE(prognos.tick(in).ho.has_value());
  // Next tick carries no reports; within the hold window the prediction
  // persists. Note the A2 stays in the open phase anyway, so use a fresh
  // pattern-less state: the hold path is exercised by the empty candidate.
  const PrognosPrediction p = prognos.tick(tick_at(Seconds{1.1}));
  EXPECT_TRUE(p.ho.has_value());
}

TEST(Prognos, MinSupportGatesColdPatterns) {
  Prognos prognos = make_prognos(false);  // no bootstrap
  // One observation of [A2]->SCGR is below min_support: no prediction yet.
  for (int round = 0; round < 2; ++round) {
    PrognosInput r = tick_at(Seconds{10.0 * round});
    r.reports = {mr(EventType::kA2, MeasScope::kServingNr, r.time)};
    prognos.tick(r);
    PrognosInput c = tick_at(Seconds{10.0 * round + 0.5});
    c.ho_commands = {command(HoType::kScgr, c.time)};
    prognos.tick(c);
  }
  PrognosInput probe = tick_at(Seconds{100.0});
  probe.reports = {mr(EventType::kA2, MeasScope::kServingNr, Seconds{100.0})};
  EXPECT_FALSE(prognos.tick(probe).ho.has_value());
}

TEST(Prognos, DefaultHoScoresMatchFig16Shape) {
  const auto scores = default_ho_scores();
  EXPECT_GT(scores.at(HoType::kScga), 10.0);   // ~17x boost
  EXPECT_LT(scores.at(HoType::kScgr), 0.3);    // ~1/7 collapse
  EXPECT_GT(scores.at(HoType::kScgm), 1.0);    // +43 %
  EXPECT_LT(scores.at(HoType::kScgc), 1.0);    // -14 %
}

}  // namespace
}  // namespace p5g::core
