#include <gtest/gtest.h>

#include <filesystem>

#include "core/decision_learner.h"
#include "core/pattern_store.h"

namespace p5g::core {
namespace {

using ran::EventType;
using ran::HoType;
using ran::MeasScope;

std::vector<Pattern> sample_patterns() {
  Pattern scgc;
  scgc.ho = HoType::kScgc;
  scgc.support = 41;
  scgc.sequence = {{EventType::kB1, MeasScope::kServingNr},
                   {EventType::kA2, MeasScope::kServingNr}};
  Pattern mnbh;
  mnbh.ho = HoType::kMnbh;
  mnbh.support = 7;
  mnbh.sequence = {{EventType::kA3, MeasScope::kServingLte}};
  return {scgc, mnbh};
}

TEST(PatternStore, SerializeDeserializeRoundTrip) {
  const std::vector<Pattern> in = sample_patterns();
  const std::vector<Pattern> out = deserialize_patterns(serialize_patterns(in));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].ho, in[i].ho);
    EXPECT_EQ(out[i].support, in[i].support);
    ASSERT_EQ(out[i].sequence.size(), in[i].sequence.size());
    for (std::size_t k = 0; k < in[i].sequence.size(); ++k) {
      EXPECT_EQ(out[i].sequence[k], in[i].sequence[k]);
    }
  }
}

TEST(PatternStore, FormatIsHumanReadable) {
  const std::string text = serialize_patterns(sample_patterns());
  EXPECT_NE(text.find("SCGC 41 B1@NR,A2@NR"), std::string::npos);
  EXPECT_NE(text.find("MNBH 7 A3@LTE"), std::string::npos);
}

TEST(PatternStore, SkipsCorruptLines) {
  const std::string text =
      "# comment\n"
      "SCGA 3 B1@LTE\n"
      "BOGUS 5 A2@NR\n"        // unknown HO type
      "SCGR -2 A2@NR\n"        // invalid support
      "SCGM 4 A3@MARS\n"       // invalid scope
      "SCGM 4\n"               // missing sequence
      "SCGC 2 B1@NR,A2@NR\n";
  const std::vector<Pattern> out = deserialize_patterns(text);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].ho, ran::HoType::kScga);
  EXPECT_EQ(out[1].ho, ran::HoType::kScgc);
}

TEST(PatternStore, FileRoundTrip) {
  const std::string path = "/tmp/p5g_patterns_test.txt";
  ASSERT_TRUE(save_patterns(sample_patterns(), path));
  const std::vector<Pattern> out = load_patterns(path);
  EXPECT_EQ(out.size(), 2u);
  std::filesystem::remove(path);
}

TEST(PatternStore, MissingFileIsColdStart) {
  EXPECT_TRUE(load_patterns("/tmp/does_not_exist_p5g_patterns.txt").empty());
}

TEST(PatternStore, TransferredPatternsBootstrapALearner) {
  DecisionLearner learner;
  learner.bootstrap(deserialize_patterns(serialize_patterns(sample_patterns())));
  ASSERT_EQ(learner.patterns().size(), 2u);
  // Bootstrapped patterns get head-start support.
  for (const Pattern& p : learner.patterns()) EXPECT_GE(p.support, 5);
}

}  // namespace
}  // namespace p5g::core
